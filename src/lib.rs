//! Umbrella crate for the bloomRF reproduction.
//!
//! Re-exports the four workspace crates so that examples and integration
//! tests can use a single dependency:
//!
//! * [`bloomrf`] — the paper's contribution: the bloomRF point-range filter.
//! * [`bloomrf_filters`] — baseline filters (Bloom, Prefix-Bloom, fence
//!   pointers, Cuckoo, Rosetta, SuRF).
//! * [`bloomrf_lsm`] — the RocksDB-like LSM substrate used by the
//!   system-level experiments.
//! * [`bloomrf_workloads`] — workload generators and synthetic datasets.

#![warn(missing_docs)]

pub use bloomrf;
pub use bloomrf_filters;
pub use bloomrf_lsm;
pub use bloomrf_workloads;

/// Convenience prelude for examples and downstream users.
pub mod prelude {
    pub use bloomrf::{
        advisor::TuningAdvisor, BloomRf, BloomRfBuilder, BloomRfConfig, ExclusiveOnlineFilter,
        LayerSpec, Locked, OnlineFilter, PointRangeFilter, RangeKey, RangePolicy, TypedBloomRf,
        TypedShardedBloomRf,
    };
    pub use bloomrf_filters::FilterKind;
    pub use bloomrf_lsm::{Db, DbOptions, TypedDb};
    pub use bloomrf_workloads::{
        Distribution, QueryGenerator, Sampler, YcsbEConfig, YcsbEWorkload,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        let filter = BloomRf::basic(64, 10, 10.0, 7).unwrap();
        filter.insert(1);
        assert!(filter.contains_point(1));
        let _ = FilterKind::Bloom.label();
        let _ = Distribution::Uniform.label();
        // The typed surface is one import away.
        let typed: TypedBloomRf<i64> = BloomRf::builder()
            .expected_keys(10)
            .key_type::<i64>()
            .build()
            .unwrap();
        typed.insert(&-1);
        assert!(typed.contains_range(&-2, &0));
        assert_eq!((-1i64).to_domain(), bloomrf::encode_i64(-1));
        let db: TypedDb<i64> = TypedDb::with_default_options();
        db.put(&-5, vec![1]);
        assert_eq!(db.get(&-5), Some(vec![1]));
    }
}
