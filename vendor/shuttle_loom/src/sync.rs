//! Model-aware `Mutex`, `RwLock`, and atomics.
//!
//! All types are thin wrappers over their `std::sync` counterparts. Outside a
//! model execution they delegate directly (same semantics, near-zero
//! overhead). Inside [`crate::model`] every acquire/release and every atomic
//! access first reports to the scheduler, which (a) turns the operation into
//! an explorable scheduling point and (b) tracks lock ownership so blocking
//! is cooperative — the real `std` lock is only ever taken when the model
//! bookkeeping has already granted it, so it can never block the OS thread.
//!
//! ## Fidelity
//!
//! The checker explores *sequentially consistent interleavings* of the
//! visible operations: it does not simulate weak-memory reorderings, so an
//! `Ordering::Relaxed` bug that only manifests as a store/load reordering on
//! real hardware is out of scope (that is ThreadSanitizer's job — see
//! `docs/concurrency.md`). `compare_exchange_weak` never fails spuriously
//! under the model. What the model does catch: lost updates, atomicity
//! violations between compound operations, ordering assumptions between
//! threads, deadlocks, and assertion failures on any explored schedule.

use std::sync::PoisonError;

use crate::next_resource_id;

/// `std::sync::LockResult`: the model path never poisons.
pub type LockResult<T> = std::result::Result<T, PoisonError<T>>;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-aware mutual-exclusion lock with the `std::sync::Mutex` API.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Bookkeeping is released in `Drop` *after* the real guard.
    model: Option<(std::sync::Arc<crate::scheduler::Scheduler>, usize, u64)>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        // Not derived: every lock needs a fresh resource id.
        Self::new(T::default())
    }
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            id: next_resource_id(),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some((sched, me)) = crate::current() {
            sched.acquire_write(me, self.id);
            let g = self
                .inner
                .try_lock()
                .expect("shuttle_loom: model granted a mutex that is really held");
            Ok(MutexGuard {
                model: Some((sched, me, self.id)),
                inner: Some(g),
            })
        } else {
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    model: None,
                    inner: Some(g),
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    model: None,
                    inner: Some(p.into_inner()),
                })),
            }
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the real guard before releasing the model bookkeeping so the
        // next task granted the lock can always `try_lock` successfully.
        self.inner = None;
        if let Some((sched, me, id)) = self.model.take() {
            sched.release_write(me, id);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after drop")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Model-aware reader-writer lock with the `std::sync::RwLock` API.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    id: u64,
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    model: Option<(std::sync::Arc<crate::scheduler::Scheduler>, usize, u64)>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    model: Option<(std::sync::Arc<crate::scheduler::Scheduler>, usize, u64)>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        // Not derived: every lock needs a fresh resource id.
        Self::new(T::default())
    }
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            id: next_resource_id(),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if let Some((sched, me)) = crate::current() {
            sched.acquire_read(me, self.id);
            let g = self
                .inner
                .try_read()
                .expect("shuttle_loom: model granted a read lock that is really write-held");
            Ok(RwLockReadGuard {
                model: Some((sched, me, self.id)),
                inner: Some(g),
            })
        } else {
            match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    model: None,
                    inner: Some(g),
                }),
                Err(p) => Err(PoisonError::new(RwLockReadGuard {
                    model: None,
                    inner: Some(p.into_inner()),
                })),
            }
        }
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if let Some((sched, me)) = crate::current() {
            sched.acquire_write(me, self.id);
            let g = self
                .inner
                .try_write()
                .expect("shuttle_loom: model granted a write lock that is really held");
            Ok(RwLockWriteGuard {
                model: Some((sched, me, self.id)),
                inner: Some(g),
            })
        } else {
            match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    model: None,
                    inner: Some(g),
                }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    model: None,
                    inner: Some(p.into_inner()),
                })),
            }
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((sched, me, id)) = self.model.take() {
            sched.release_read(me, id);
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((sched, me, id)) = self.model.take() {
            sched.release_write(me, id);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop")
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after drop")
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Model-aware atomic integer/bool types. Each access is a scheduling point;
/// the operation itself executes on the real `std` atomic (tasks run one at a
/// time, so the model semantics are sequentially consistent regardless of the
/// `Ordering` argument — see the module docs for what that does and does not
/// verify).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic_int {
        ($name:ident, $std:ident, $prim:ty) => {
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                pub fn new(v: $prim) -> Self {
                    Self {
                        inner: std::sync::atomic::$std::new(v),
                    }
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    crate::maybe_yield();
                    self.inner.load(order)
                }

                pub fn store(&self, v: $prim, order: Ordering) {
                    crate::maybe_yield();
                    self.inner.store(v, order)
                }

                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    crate::maybe_yield();
                    self.inner.swap(v, order)
                }

                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    crate::maybe_yield();
                    self.inner.fetch_add(v, order)
                }

                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    crate::maybe_yield();
                    self.inner.fetch_sub(v, order)
                }

                pub fn fetch_or(&self, v: $prim, order: Ordering) -> $prim {
                    crate::maybe_yield();
                    self.inner.fetch_or(v, order)
                }

                pub fn fetch_and(&self, v: $prim, order: Ordering) -> $prim {
                    crate::maybe_yield();
                    self.inner.fetch_and(v, order)
                }

                pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    crate::maybe_yield();
                    self.inner.fetch_max(v, order)
                }

                pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                    crate::maybe_yield();
                    self.inner.fetch_min(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    crate::maybe_yield();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Like `compare_exchange`; the model never fails spuriously.
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    crate::maybe_yield();
                    self.inner
                        .compare_exchange_weak(current, new, success, failure)
                }

                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }

                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }
            }
        };
    }

    model_atomic_int!(AtomicU32, AtomicU32, u32);
    model_atomic_int!(AtomicU64, AtomicU64, u64);
    model_atomic_int!(AtomicUsize, AtomicUsize, usize);
    model_atomic_int!(AtomicI64, AtomicI64, i64);

    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            crate::maybe_yield();
            self.inner.load(order)
        }

        pub fn store(&self, v: bool, order: Ordering) {
            crate::maybe_yield();
            self.inner.store(v, order)
        }

        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            crate::maybe_yield();
            self.inner.swap(v, order)
        }

        pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
            crate::maybe_yield();
            self.inner.fetch_or(v, order)
        }

        pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
            crate::maybe_yield();
            self.inner.fetch_and(v, order)
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            crate::maybe_yield();
            self.inner.compare_exchange(current, new, success, failure)
        }

        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }

        pub fn get_mut(&mut self) -> &mut bool {
            self.inner.get_mut()
        }
    }
}
