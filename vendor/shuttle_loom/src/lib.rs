//! Offline loom-style model checker shim.
//!
//! An API-compatible subset of [loom](https://docs.rs/loom) (plus the pieces
//! of [shuttle](https://docs.rs/shuttle) we want — preemption bounding and an
//! iteration [`Report`]), small enough to vendor and with no dependencies.
//! Code written against [`sync`] and [`thread`] behaves exactly like
//! `std`/`parking_lot` outside a model execution, and becomes a fully
//! instrumented, deterministically schedulable model inside [`model`]:
//!
//! ```
//! use std::sync::Arc;
//! use shuttle_loom::sync::atomic::{AtomicU64, Ordering};
//!
//! let report = shuttle_loom::Builder::new().check(|| {
//!     let x = Arc::new(AtomicU64::new(0));
//!     let x2 = Arc::clone(&x);
//!     let t = shuttle_loom::thread::spawn(move || {
//!         x2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     x.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(x.load(Ordering::Relaxed), 2);
//! });
//! assert!(report.exhausted, "all interleavings explored");
//! ```
//!
//! # How it works
//!
//! Every execution runs the closure as task 0 on a fresh OS thread; spawned
//! tasks get their own threads too, but a cooperative token (handed around by
//! the internal scheduler) ensures at most one task executes between scheduling
//! points. Each visible operation — atomic access, lock acquire, spawn, join
//! — is a scheduling point where the scheduler consults a replay vector and
//! records `(options, chosen)`. After an execution finishes, the explorer
//! advances the deepest decision that still has an untried option
//! (depth-first search over the schedule tree) and replays; when no decision
//! can be advanced the space is exhausted.
//!
//! Supported knobs on [`Builder`]:
//! - `preemption_bound`: CHESS-style bound on *involuntary* context switches
//!   per execution. Most real bugs need ≤ 2 preemptions; bounding keeps big
//!   models polynomial instead of exponential.
//! - `max_iterations` / `max_steps`: hard caps so a model can never wedge CI.
//!
//! # Fidelity
//!
//! The model explores sequentially consistent interleavings only: no weak
//! memory reordering is simulated (see `docs/concurrency.md` in the repo
//! root for the division of labour between this checker, ThreadSanitizer and
//! the lock-rank checker), `compare_exchange_weak` never fails spuriously,
//! and `std::sync` primitives used *outside* the [`sync`] facade are
//! invisible to the scheduler.

mod scheduler;
pub mod sync;
pub mod thread;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};

use scheduler::{Cancelled, Scheduler};

// ---------------------------------------------------------------------------
// Ambient execution context
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn set_current(ctx: Option<(Arc<Scheduler>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// The scheduler and task id of the calling thread, if it is a model task.
pub(crate) fn current() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Task id of the calling thread *on this specific scheduler* (guards against
/// handles crossing between nested/unrelated executions).
pub(crate) fn current_task_on(sched: &Arc<Scheduler>) -> Option<usize> {
    current().and_then(|(s, id)| Arc::ptr_eq(&s, sched).then_some(id))
}

/// Scheduling point if inside a model, no-op otherwise.
pub(crate) fn maybe_yield() {
    if let Some((sched, me)) = current() {
        sched.yield_point(me);
    }
}

/// Scheduling point if inside a model, `fallback` otherwise.
pub(crate) fn maybe_yield_or(fallback: fn()) {
    match current() {
        Some((sched, me)) => sched.yield_point(me),
        None => fallback(),
    }
}

static NEXT_RESOURCE_ID: AtomicU64 = AtomicU64::new(1);

/// Fresh id for a lock resource. Process-global so locks created outside the
/// model (or shared between executions) can never collide.
pub(crate) fn next_resource_id() -> u64 {
    // ordering: process-wide unique-id counter; only uniqueness matters.
    NEXT_RESOURCE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Suppress panic reports for the internal `Cancelled` payload used to tear
/// down cancelled executions; real panics still reach the previous hook.
fn install_panic_filter() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<Cancelled>() {
                return;
            }
            prev(info);
        }));
    });
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// Outcome of a [`Builder::check`] run that did not fail.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of executions (distinct schedules) explored.
    pub iterations: usize,
    /// True when the whole (bounded) schedule space was explored; false when
    /// the run stopped at `max_iterations` first.
    pub exhausted: bool,
}

/// Configuration for a model-checking run.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Maximum involuntary context switches per execution (`None` = no
    /// bound, full DFS).
    pub preemption_bound: Option<usize>,
    /// Stop after this many executions even if schedules remain.
    pub max_iterations: usize,
    /// Fail an execution that exceeds this many scheduling points.
    pub max_steps: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: None,
            max_iterations: 500_000,
            max_steps: 200_000,
        }
    }
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Explore schedules of `f` until the space is exhausted or a cap is
    /// hit. Panics (with the failing schedule) if any execution panics,
    /// deadlocks, or exceeds `max_steps`.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_filter();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            let sched = Arc::new(Scheduler::new(
                std::mem::take(&mut prefix),
                self.preemption_bound,
                self.max_steps,
            ));
            let root = sched.register_task();
            debug_assert_eq!(root, 0);
            let (sched2, f2) = (Arc::clone(&sched), Arc::clone(&f));
            std::thread::spawn(move || thread::task_main(sched2, 0, move || f2()));
            let (failure, decisions) = sched.driver_wait();
            if let Some(msg) = failure {
                let schedule: Vec<usize> = decisions.iter().map(|&(_, c)| c).collect();
                panic!(
                    "shuttle_loom: model failed on iteration {iterations}: {msg}\n  \
                     failing schedule (decision indices): {schedule:?}"
                );
            }
            match next_prefix(decisions) {
                Some(p) => prefix = p,
                None => {
                    return Report {
                        iterations,
                        exhausted: true,
                    }
                }
            }
            if iterations >= self.max_iterations {
                return Report {
                    iterations,
                    exhausted: false,
                };
            }
        }
    }
}

/// Advance the DFS: bump the deepest decision that still has an untried
/// option and truncate everything after it. `None` when the tree is spent.
fn next_prefix(mut decisions: Vec<(usize, usize)>) -> Option<Vec<usize>> {
    while let Some(&(options, chosen)) = decisions.last() {
        if chosen + 1 < options {
            let n = decisions.len();
            decisions[n - 1].1 += 1;
            return Some(decisions.into_iter().map(|(_, c)| c).collect());
        }
        decisions.pop();
    }
    None
}

/// Exhaustively explore all interleavings of `f` with default settings,
/// loom-style. See [`Builder`] for bounded exploration.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Mutex, RwLock};
    use super::*;

    #[test]
    fn next_prefix_walks_the_tree() {
        assert_eq!(next_prefix(vec![(1, 0), (2, 0)]), Some(vec![0, 1]));
        assert_eq!(next_prefix(vec![(1, 0), (2, 1)]), None);
        assert_eq!(next_prefix(vec![(3, 1), (2, 1)]), Some(vec![2]));
        assert_eq!(next_prefix(vec![]), None);
    }

    #[test]
    fn single_thread_model_runs_once() {
        let report = model(|| {
            let x = AtomicU64::new(1);
            x.fetch_add(2, Ordering::Relaxed);
            assert_eq!(x.load(Ordering::Relaxed), 3);
        });
        assert!(report.exhausted);
        assert_eq!(report.iterations, 1);
    }

    #[test]
    fn two_increments_explore_multiple_schedules() {
        let report = model(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                x2.fetch_add(1, Ordering::Relaxed);
            });
            x.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(x.load(Ordering::Relaxed), 2);
        });
        assert!(report.exhausted);
        assert!(
            report.iterations > 1,
            "expected >1 interleavings, got {}",
            report.iterations
        );
    }

    #[test]
    fn finds_lost_update_from_nonatomic_rmw() {
        // load + store is not an atomic increment: the model must find the
        // schedule where both threads read 0 and one update is lost.
        let result = std::panic::catch_unwind(|| {
            model(|| {
                let x = Arc::new(AtomicU64::new(0));
                let x2 = Arc::clone(&x);
                let t = thread::spawn(move || {
                    let v = x2.load(Ordering::SeqCst);
                    x2.store(v + 1, Ordering::SeqCst);
                });
                let v = x.load(Ordering::SeqCst);
                x.store(v + 1, Ordering::SeqCst);
                t.join().unwrap();
                assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
            })
        });
        assert!(result.is_err(), "model missed the lost-update schedule");
    }

    #[test]
    fn mutex_protects_compound_update() {
        let report = model(|| {
            let x = Arc::new(Mutex::new(0u64));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                let mut g = x2.lock().unwrap();
                *g += 1;
            });
            {
                let mut g = x.lock().unwrap();
                *g += 1;
            }
            t.join().unwrap();
            assert_eq!(*x.lock().unwrap(), 2);
        });
        assert!(report.exhausted);
    }

    #[test]
    fn detects_lock_order_deadlock() {
        let result = std::panic::catch_unwind(|| {
            model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop((_ga, _gb));
                t.join().unwrap();
            })
        });
        let msg = match result {
            Ok(_) => panic!("model missed the ab/ba deadlock"),
            Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
        };
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let report = model(|| {
            let x = Arc::new(RwLock::new(7u64));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || *x2.read().unwrap());
            let mine = *x.read().unwrap();
            let theirs = t.join().unwrap();
            assert_eq!((mine, theirs), (7, 7));
        });
        assert!(report.exhausted);
    }

    #[test]
    fn preemption_bound_shrinks_exploration() {
        let run = |bound| {
            Builder {
                preemption_bound: bound,
                ..Builder::new()
            }
            .check(|| {
                let x = Arc::new(AtomicU64::new(0));
                let x2 = Arc::clone(&x);
                let t = thread::spawn(move || {
                    for _ in 0..4 {
                        x2.fetch_add(1, Ordering::Relaxed);
                    }
                });
                for _ in 0..4 {
                    x.fetch_add(1, Ordering::Relaxed);
                }
                t.join().unwrap();
                assert_eq!(x.load(Ordering::Relaxed), 8);
            })
        };
        let full = run(None);
        let bounded = run(Some(1));
        assert!(full.exhausted && bounded.exhausted);
        assert!(
            bounded.iterations < full.iterations,
            "bound 1 ({}) should explore fewer schedules than full DFS ({})",
            bounded.iterations,
            full.iterations
        );
    }

    #[test]
    fn plain_behaviour_outside_model() {
        // No scheduler active: everything is plain std behaviour.
        let x = AtomicU64::new(0);
        x.store(5, Ordering::SeqCst);
        assert_eq!(x.load(Ordering::SeqCst), 5);
        let m = Mutex::new(3u64);
        assert_eq!(*m.lock().unwrap(), 3);
        let t = thread::spawn(|| 42u64);
        assert_eq!(t.join().unwrap(), 42);
    }
}
