//! Model-aware replacement for the subset of `std::thread` the repo uses.
//!
//! Inside [`crate::model`], `spawn` registers a task with the active
//! scheduler and the new OS thread waits for the execution token before
//! running the closure. Outside a model execution everything delegates to
//! `std::thread`, so code written against this module behaves identically in
//! ordinary builds and tests.

use std::any::Any;
use std::sync::{Arc, Mutex};

use crate::scheduler::{Cancelled, Scheduler};

/// `std::thread::Result`: `Err` carries the panic payload.
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        sched: Arc<Scheduler>,
        id: usize,
        slot: Arc<Mutex<Option<T>>>,
    },
}

/// Handle to a spawned thread or model task.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread/task to finish and return its result. Inside a
    /// model, a panicking task fails the whole execution, so the `Err` case
    /// is only observable on the way down.
    pub fn join(self) -> Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Model { sched, id, slot } => {
                let me = crate::current_task_on(&sched)
                    .expect("shuttle_loom: joined a model JoinHandle from outside the model");
                sched.join_wait(me, id);
                let v = match slot.lock() {
                    Ok(mut g) => g.take(),
                    Err(p) => p.into_inner().take(),
                };
                match v {
                    Some(v) => Ok(v),
                    None => Err(Box::new("model task panicked")),
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked (non-string payload)".to_string()
    }
}

/// Body of every model task's OS thread: wait for the first turn, run the
/// closure, report panics, and always hand control back to the scheduler.
pub(crate) fn task_main(sched: Arc<Scheduler>, id: usize, body: impl FnOnce()) {
    crate::set_current(Some((Arc::clone(&sched), id)));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sched.wait_for_start(id);
        body();
    }));
    if let Err(payload) = result {
        if !payload.is::<Cancelled>() {
            sched.report_panic(panic_message(payload.as_ref()));
        }
    }
    sched.task_finished(id);
    crate::set_current(None);
}

/// Spawn a thread (model task inside [`crate::model`], OS thread otherwise).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if let Some((sched, me)) = crate::current() {
        let id = sched.register_task();
        let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let (sched2, slot2) = (Arc::clone(&sched), Arc::clone(&slot));
        std::thread::spawn(move || {
            task_main(Arc::clone(&sched2), id, move || {
                let v = f();
                match slot2.lock() {
                    Ok(mut g) => *g = Some(v),
                    Err(p) => *p.into_inner() = Some(v),
                }
            });
        });
        // Spawn is itself a visible operation: give the explorer a chance to
        // run the child before the parent's next step.
        sched.yield_point(me);
        JoinHandle {
            inner: Inner::Model { sched, id, slot },
        }
    } else {
        JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        }
    }
}

/// Cooperative yield: a pure scheduling point inside the model, a real
/// `std::thread::yield_now` outside it.
pub fn yield_now() {
    crate::maybe_yield_or(std::thread::yield_now);
}
