//! The cooperative scheduler behind [`crate::model`].
//!
//! Every task of a model execution runs on its own OS thread, but at most one
//! task is *runnable on the CPU* at any instant: a task owns the execution
//! token (`SchedState::current`) or it is parked on the scheduler condvar.
//! Each visible operation (atomic access, lock acquire/release boundary,
//! spawn, join) calls back into the scheduler, which consults the replay
//! schedule recorded by the explorer and decides which task runs next. That
//! makes executions fully deterministic: replaying the same decision vector
//! reproduces the same interleaving, which is what lets the explorer walk the
//! schedule tree depth-first.

use std::collections::HashMap;
use std::panic::panic_any;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Panic payload used to unwind task stacks when an execution is torn down
/// (failure found, or step budget exhausted). Never escapes the crate: task
/// wrappers catch it and the global panic hook suppresses its report.
pub(crate) struct Cancelled;

/// What a blocked task is waiting for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Waiting {
    /// A lock resource (mutex, or rwlock in either mode), by resource id.
    Lock(u64),
    /// Another task to finish (`JoinHandle::join`).
    Task(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(Waiting),
    Finished,
}

/// Bookkeeping for one lock resource. A mutex only ever uses `writer`.
#[derive(Default)]
struct Res {
    writer: Option<usize>,
    readers: Vec<usize>,
}

struct SchedState {
    tasks: Vec<Status>,
    /// Task currently holding the execution token.
    current: usize,
    resources: HashMap<u64, Res>,
    /// Replay prefix: option index to take at each decision point.
    schedule: Vec<usize>,
    /// `(number_of_options, chosen_index)` recorded at each decision point.
    decisions: Vec<(usize, usize)>,
    preemptions: usize,
    steps: usize,
    failure: Option<String>,
    cancelling: bool,
    done: bool,
}

pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    preemption_bound: Option<usize>,
    max_steps: usize,
}

impl Scheduler {
    pub fn new(schedule: Vec<usize>, preemption_bound: Option<usize>, max_steps: usize) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                tasks: Vec::new(),
                current: 0,
                resources: HashMap::new(),
                schedule,
                decisions: Vec::new(),
                preemptions: 0,
                steps: 0,
                failure: None,
                cancelling: false,
                done: false,
            }),
            cv: Condvar::new(),
            preemption_bound,
            max_steps,
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        // The scheduler's own mutex is internal infrastructure; it is never
        // poisoned on the non-panicking paths, and on teardown paths we want
        // to keep going regardless.
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Register a new task and return its id. Called by the driver (task 0)
    /// and by `thread::spawn`.
    pub fn register_task(&self) -> usize {
        let mut st = self.lock();
        st.tasks.push(Status::Runnable);
        st.tasks.len() - 1
    }

    fn runnable(st: &SchedState) -> Vec<usize> {
        st.tasks
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Runnable))
            .map(|(i, _)| i)
            .collect()
    }

    /// Pick the next task among `options` (never empty), honouring the replay
    /// prefix and recording the decision for the explorer.
    fn choose(&self, st: &mut SchedState, options: &[usize]) -> usize {
        let idx = st.decisions.len();
        let chosen = if idx < st.schedule.len() {
            let c = st.schedule[idx];
            assert!(
                c < options.len(),
                "shuttle_loom: nondeterministic execution — replay diverged at \
                 decision {idx} ({} options, schedule wanted index {c}); model \
                 closures must be deterministic apart from thread interleaving",
                options.len()
            );
            c
        } else {
            0
        };
        st.decisions.push((options.len(), chosen));
        options[chosen]
    }

    /// Park until this task holds the execution token (or the execution is
    /// being cancelled, in which case unwind).
    fn wait_for_turn(&self, mut st: MutexGuard<'_, SchedState>, me: usize) {
        while st.current != me && !st.cancelling {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        if st.cancelling {
            drop(st);
            panic_any(Cancelled);
        }
    }

    fn fail(&self, st: &mut SchedState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.cancelling = true;
        self.cv.notify_all();
    }

    /// Scheduling point: a runnable task is about to perform a visible
    /// operation. May hand the token to another runnable task (a preemption).
    pub fn yield_point(&self, me: usize) {
        let mut st = self.lock();
        if st.cancelling {
            drop(st);
            panic_any(Cancelled);
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            self.fail(
                &mut st,
                format!(
                    "step limit exceeded ({} scheduling points); raise \
                     Builder::max_steps or shrink the model",
                    self.max_steps
                ),
            );
            drop(st);
            panic_any(Cancelled);
        }
        // Option order: continue with the current task first (index 0 is the
        // default DFS branch and costs no preemption), then the other
        // runnable tasks in ascending id order.
        let mut options = vec![me];
        let bounded = self.preemption_bound.is_some_and(|b| st.preemptions >= b);
        if !bounded {
            options.extend(Self::runnable(&st).into_iter().filter(|&t| t != me));
        }
        let next = self.choose(&mut st, &options);
        if next != me {
            st.preemptions += 1;
            st.current = next;
            self.cv.notify_all();
            self.wait_for_turn(st, me);
        }
    }

    /// The current task just blocked (`me` is already marked `Blocked`):
    /// hand the token to some runnable task and park. A forced switch is not
    /// a preemption. Returns once `me` is runnable again and holds the token.
    fn switch_from_blocked(&self, mut st: MutexGuard<'_, SchedState>, me: usize) {
        let options = Self::runnable(&st);
        if options.is_empty() {
            let waiting = match st.tasks[me] {
                Status::Blocked(w) => w,
                _ => unreachable!("switch_from_blocked on non-blocked task"),
            };
            self.fail(
                &mut st,
                format!("deadlock: every live task is blocked (task {me} waiting on {waiting:?})"),
            );
            drop(st);
            panic_any(Cancelled);
        }
        let next = self.choose(&mut st, &options);
        st.current = next;
        self.cv.notify_all();
        self.wait_for_turn(st, me);
    }

    /// Park a task that is waiting for its first turn after spawn.
    pub fn wait_for_start(&self, me: usize) {
        let st = self.lock();
        self.wait_for_turn(st, me);
    }

    pub fn acquire_write(&self, me: usize, res: u64) {
        loop {
            self.yield_point(me);
            let mut st = self.lock();
            if st.cancelling {
                drop(st);
                panic_any(Cancelled);
            }
            let r = st.resources.entry(res).or_default();
            if r.writer.is_none() && r.readers.is_empty() {
                r.writer = Some(me);
                return;
            }
            st.tasks[me] = Status::Blocked(Waiting::Lock(res));
            self.switch_from_blocked(st, me);
        }
    }

    pub fn acquire_read(&self, me: usize, res: u64) {
        loop {
            self.yield_point(me);
            let mut st = self.lock();
            if st.cancelling {
                drop(st);
                panic_any(Cancelled);
            }
            let r = st.resources.entry(res).or_default();
            if r.writer.is_none() {
                r.readers.push(me);
                return;
            }
            st.tasks[me] = Status::Blocked(Waiting::Lock(res));
            self.switch_from_blocked(st, me);
        }
    }

    fn wake_lock_waiters(st: &mut SchedState, res: u64) {
        for s in st.tasks.iter_mut() {
            if *s == Status::Blocked(Waiting::Lock(res)) {
                *s = Status::Runnable;
            }
        }
    }

    pub fn release_write(&self, me: usize, res: u64) {
        let mut st = self.lock();
        let r = st.resources.entry(res).or_default();
        debug_assert_eq!(r.writer, Some(me), "release_write by non-holder");
        r.writer = None;
        Self::wake_lock_waiters(&mut st, res);
        self.cv.notify_all();
    }

    pub fn release_read(&self, me: usize, res: u64) {
        let mut st = self.lock();
        let r = st.resources.entry(res).or_default();
        if let Some(pos) = r.readers.iter().position(|&t| t == me) {
            r.readers.swap_remove(pos);
        } else {
            debug_assert!(false, "release_read by non-holder");
        }
        Self::wake_lock_waiters(&mut st, res);
        self.cv.notify_all();
    }

    /// Block until `target` finishes.
    pub fn join_wait(&self, me: usize, target: usize) {
        loop {
            self.yield_point(me);
            let mut st = self.lock();
            if st.cancelling {
                drop(st);
                panic_any(Cancelled);
            }
            if st.tasks[target] == Status::Finished {
                return;
            }
            st.tasks[me] = Status::Blocked(Waiting::Task(target));
            self.switch_from_blocked(st, me);
        }
    }

    /// Record a user panic (assertion failure inside the model) as the
    /// execution's failure and start tearing the execution down.
    pub fn report_panic(&self, msg: String) {
        let mut st = self.lock();
        self.fail(&mut st, msg);
    }

    /// Called by every task on its way out (normal return, user panic, or
    /// cancellation). Must not panic.
    pub fn task_finished(&self, me: usize) {
        let mut st = self.lock();
        st.tasks[me] = Status::Finished;
        for s in st.tasks.iter_mut() {
            if *s == Status::Blocked(Waiting::Task(me)) {
                *s = Status::Runnable;
            }
        }
        if st.tasks.iter().all(|s| *s == Status::Finished) {
            st.done = true;
            self.cv.notify_all();
            return;
        }
        if st.cancelling {
            self.cv.notify_all();
            return;
        }
        let options = Self::runnable(&st);
        if options.is_empty() {
            self.fail(
                &mut st,
                format!("deadlock: task {me} finished but every remaining task is blocked"),
            );
            return;
        }
        let next = self.choose(&mut st, &options);
        st.current = next;
        self.cv.notify_all();
    }

    /// Driver side: wait until every task has finished, then collect the
    /// outcome of the execution.
    pub fn driver_wait(&self) -> (Option<String>, Vec<(usize, usize)>) {
        let mut st = self.lock();
        while !st.done {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        (st.failure.clone(), std::mem::take(&mut st.decisions))
    }
}
