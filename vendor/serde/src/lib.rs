//! Offline shim for the `serde` crate (see `vendor/README.md`).
//!
//! Provides marker traits with the real crate's names plus derive macros that
//! implement them, so types annotated with
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]`
//! and `#[serde(...)]` helper attributes compile when the feature is on. The
//! shim does **not** serialize anything — swap in the registry crate for that.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization alias, mirroring `serde::de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> super::Deserialize<'de> {}
}

pub use serde_derive::{Deserialize, Serialize};
