//! Offline shim for the `bytes` crate (see `vendor/README.md`).
//!
//! Implements the subset of the `bytes` API this workspace uses: a growable
//! [`BytesMut`] buffer with little-endian `put_*` appenders (via [`BufMut`])
//! that can be frozen into a cheaply-cloneable, immutable [`Bytes`] handle.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply-cloneable immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

/// Growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Append-style writer trait, mirroring `bytes::BufMut` for the little-endian
/// putters the workspace uses.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_encoding() {
        let mut b = BytesMut::new();
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_slice(&[1, 2, 3]);
        b.put_u8(9);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 4 + 8 + 3 + 1);
        assert_eq!(
            u32::from_le_bytes(frozen[0..4].try_into().unwrap()),
            0xDEAD_BEEF
        );
        assert_eq!(u64::from_le_bytes(frozen[4..12].try_into().unwrap()), 42);
        assert_eq!(&frozen[12..15], &[1, 2, 3]);
        assert_eq!(frozen[15], 9);
        let copy = frozen.clone();
        assert_eq!(copy, frozen);
    }
}
