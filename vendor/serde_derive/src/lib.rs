//! Offline shim derive macros for the `serde` shim (see `vendor/README.md`).
//!
//! Each derive finds the annotated type's name (no `syn` available offline, so
//! the token stream is scanned by hand) and emits an empty marker-trait impl.
//! `attributes(serde)` registers the `#[serde(...)]` helper attributes the
//! real derives accept, so annotations like `#[serde(skip)]` parse.

use proc_macro::{TokenStream, TokenTree};

/// Scan a `struct`/`enum`/`union` item for its name and generic parameter
/// names. Returns `(type_name, generic_idents)`.
fn parse_item(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#` followed by a bracketed group) and visibility /
    // other modifiers until the item keyword.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the attribute's bracketed group.
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let id = id.to_string();
                if id == "struct" || id == "enum" || id == "union" {
                    if let Some(TokenTree::Ident(n)) = tokens.next() {
                        name = Some(n.to_string());
                    }
                    break;
                }
                // `pub`, `pub(crate)` group handled below, etc. — keep going.
            }
            _ => {}
        }
    }
    let name = name.expect("shim derive: could not find type name");

    // Collect generic parameter idents from `<...>` at depth 1, if present.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut expect_param = true;
            while let Some(tt) = tokens.next() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                    }
                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_param => {
                        // Lifetime parameter: splice the tick onto the ident.
                        if let Some(TokenTree::Ident(id)) = tokens.next() {
                            generics.push(format!("'{id}"));
                        }
                        expect_param = false;
                    }
                    TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                        expect_param = false;
                    }
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        let id = id.to_string();
                        if id != "const" {
                            generics.push(id);
                            expect_param = false;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    (name, generics)
}

fn impl_header(generics: &[String], extra_lifetime: Option<&str>) -> (String, String) {
    let mut params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        params.push(lt.to_string());
    }
    params.extend(generics.iter().cloned());
    let impl_generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let ty_generics = if generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", generics.join(", "))
    };
    (impl_generics, ty_generics)
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, generics) = parse_item(input);
    let (impl_g, ty_g) = impl_header(&generics, None);
    format!("impl{impl_g} ::serde::Serialize for {name}{ty_g} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, generics) = parse_item(input);
    let (impl_g, ty_g) = impl_header(&generics, Some("'de"));
    format!("impl{impl_g} ::serde::Deserialize<'de> for {name}{ty_g} {{}}")
        .parse()
        .unwrap()
}
