//! Edge-case pools for the primitive numeric types. The [`crate::arbitrary`]
//! strategies draw from these pools a fraction of the time so that boundary
//! values (zero, extrema, power-of-two neighborhoods, IEEE-754 specials)
//! appear far more often than uniform sampling would produce them — the
//! shim's substitute for proptest's shrinking toward simple values.

/// Edge cases for `u64` (also masked down for the narrower unsigned types).
pub mod u64 {
    /// Values every unsigned property should see early.
    pub const EDGES: &[u64] = &[
        0,
        1,
        2,
        (1 << 32) - 1,
        1 << 32,
        (1 << 32) + 1,
        u64::MAX - 1,
        u64::MAX,
    ];
}

/// Edge cases for `i64` (also masked down for the narrower signed types).
pub mod i64 {
    /// Values every signed property should see early.
    pub const EDGES: &[i64] = &[
        0,
        1,
        -1,
        2,
        -2,
        i64::MAX - 1,
        i64::MAX,
        i64::MIN,
        i64::MIN + 1,
    ];
}

/// Edge cases for `f64`.
pub mod f64 {
    /// IEEE-754 specials and sign/magnitude boundaries. Includes NaN — tests
    /// that cannot tolerate it use `prop_assume!`.
    pub const EDGES: &[f64] = &[
        0.0,
        -0.0,
        1.0,
        -1.0,
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        f64::MAX,
        f64::MIN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
    ];
}

/// Edge cases for `f32`.
pub mod f32 {
    /// IEEE-754 specials and sign/magnitude boundaries.
    pub const EDGES: &[f32] = &[
        0.0,
        -0.0,
        1.0,
        -1.0,
        f32::MIN_POSITIVE,
        f32::MAX,
        f32::MIN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
    ];
}
