//! Collection strategies: `prop::collection::vec(element, size)`.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive length bounds for a generated collection; mirrors
/// `proptest::collection::SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    /// Smallest admissible length.
    pub fn min(&self) -> usize {
        self.min
    }

    /// Largest admissible length.
    pub fn max(&self) -> usize {
        self.max
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate a `Vec` whose elements come from `element` and whose length is
/// drawn from `size` (any of `n`, `a..b`, `a..=b`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.in_range_u64(self.size.min as u64, self.size.max as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_respects_size_bounds() {
        let strat = vec(any::<u64>(), 1..400);
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((1..400).contains(&v.len()));
        }
    }

    #[test]
    fn fixed_size_is_exact() {
        let strat = vec(any::<u8>(), 7);
        let mut rng = TestRng::for_case("vec_fixed", 0);
        assert_eq!(strat.generate(&mut rng).len(), 7);
    }
}
