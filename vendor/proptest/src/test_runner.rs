//! Test-runner types for the proptest shim: configuration, the per-case
//! deterministic RNG, and the error type threaded through `prop_assert!`.

/// Configuration for a `proptest!` block.
///
/// The only knob the shim supports is the case count. Like real proptest,
/// the `PROPTEST_CASES` environment variable overrides whatever the source
/// requests — tier-1 CI uses this to keep the heavy invariant suite fast
/// without editing the tests.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per property (unless `PROPTEST_CASES`
    /// overrides it at run time).
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases: env_case_override().unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256 cases.
        Self::with_cases(256)
    }
}

fn env_case_override() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; not a failure.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Deterministic per-case RNG (SplitMix64 seeded from the test name and case
/// index). Determinism stands in for proptest's persisted failure seeds: a
/// failing case number reproduces exactly on re-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        seed ^= u64::from(case);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        Self { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift (Lemire); bias is negligible for test generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn in_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(span + 1)
        }
    }

    /// True with probability `num / denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("prop", 3);
        let mut b = TestRng::for_case("prop", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("prop", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn in_range_respects_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = rng.in_range_u64(10, 20);
            assert!((10..=20).contains(&v));
        }
        // Full-width range must not overflow.
        let _ = rng.in_range_u64(0, u64::MAX);
    }
}
