//! Offline shim for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with `#![proptest_config(..)]`), the
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros,
//! [`arbitrary::any`], numeric range strategies and
//! [`collection::vec`]. Differences from real proptest:
//!
//! * generation is a simple deterministic PRNG with edge-case biasing —
//!   there is no shrinking; failures report the full generated inputs and
//!   the case number instead;
//! * the case count is `ProptestConfig::with_cases(n)`, overridable at run
//!   time with the `PROPTEST_CASES` environment variable (this is how tier-1
//!   keeps the heavy invariant suite fast).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod num;

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!` for the
/// `fn name(pat in strategy, ...) { body }` form, with an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let cases = config.cases;
            for case in 0..cases {
                let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                let values = ( $( $crate::strategy::Strategy::generate(&($strat), &mut rng), )* );
                let describe = format!("{values:?}");
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    #[allow(unused_mut, unused_parens)]
                    let ( $($arg,)* ) = ::core::clone::Clone::clone(&values);
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest case {case}/{cases} failed: {message}\n\
                             generated inputs: {describe}"
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

/// Assert inside a property test; failures report the generated inputs
/// instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{left:?}`\n right: `{right:?}`"
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{left:?}`"
        );
    }};
}

/// Discard the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
