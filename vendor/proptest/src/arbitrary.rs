//! `any::<T>()` — the "whole domain" strategy for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Clone + Debug {
    /// Generate one value from the full domain, with edge-case biasing.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T`; mirrors `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// One draw in EDGE_ODDS lands on the per-type edge-case pool.
const EDGE_ODDS: u64 = 8;

macro_rules! arbitrary_uint {
    ($($ty:ty),* $(,)?) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                if rng.chance(1, EDGE_ODDS) {
                    let pool = crate::num::u64::EDGES;
                    return pool[rng.below(pool.len() as u64) as usize] as $ty;
                }
                rng.next_u64() as $ty
            }
        }
    )*};
}

macro_rules! arbitrary_int {
    ($($ty:ty),* $(,)?) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                if rng.chance(1, EDGE_ODDS) {
                    let pool = crate::num::i64::EDGES;
                    return pool[rng.below(pool.len() as u64) as usize] as $ty;
                }
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.chance(1, 2)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        if rng.chance(1, EDGE_ODDS) {
            let pool = crate::num::f64::EDGES;
            return pool[rng.below(pool.len() as u64) as usize];
        }
        // Random bit patterns cover the full value space (normals,
        // subnormals, infinities, and the occasional NaN) with realistic
        // exponent diversity.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        if rng.chance(1, EDGE_ODDS) {
            let pool = crate::num::f32::EDGES;
            return pool[rng.below(pool.len() as u64) as usize];
        }
        f32::from_bits(rng.next_u64() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_edges_and_spread() {
        let mut rng = TestRng::for_case("any_u64", 0);
        let mut saw_zero = false;
        let mut saw_large = false;
        for _ in 0..4000 {
            let v = u64::arbitrary(&mut rng);
            saw_zero |= v == 0;
            saw_large |= v > u64::MAX / 2;
        }
        assert!(saw_zero && saw_large);
    }

    #[test]
    fn any_f64_produces_finite_values_mostly() {
        let mut rng = TestRng::for_case("any_f64", 0);
        let finite = (0..1000)
            .filter(|_| f64::arbitrary(&mut rng).is_finite())
            .count();
        assert!(finite > 500);
    }
}
