//! The [`Strategy`] trait and implementations for the range expressions the
//! workspace's property tests use (`0u64..1 << 40`, `1..400usize`, ...).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of values for one property-test argument.
///
/// Unlike real proptest there is no value tree and no shrinking: `generate`
/// produces a finished value directly. Edge cases are biased in by the
/// individual implementations instead of discovered by shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+ $(,)?)),* $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

macro_rules! int_range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(
                    self.start < self.end,
                    "empty range strategy {:?}..{:?}",
                    self.start,
                    self.end
                );
                // Bias the endpoints in occasionally; uniform otherwise.
                if rng.chance(1, 16) {
                    return if rng.chance(1, 2) { self.start } else { self.end - 1 };
                }
                let lo = self.start as i128;
                let hi = self.end as i128 - 1;
                let span = (hi - lo) as u64;
                (lo + rng.in_range_u64(0, span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                if rng.chance(1, 16) {
                    return if rng.chance(1, 2) { *self.start() } else { *self.end() };
                }
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                if (hi - lo) as u128 > u128::from(u64::MAX) {
                    // Only reachable for the full u128/i128 span; fall back to
                    // two words.
                    let word = u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64());
                    return (lo as u128).wrapping_add(word) as $ty;
                }
                let span = (hi - lo) as u64;
                (lo + rng.in_range_u64(0, span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        if rng.chance(1, 16) {
            return self.start;
        }
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = self.start + unit * (self.end - self.start);
        if v < self.end {
            v.max(self.start)
        } else {
            // Rounding landed on (or past) the excluded upper bound; step to
            // the largest representable value below it. Since start < end,
            // that value is still >= start.
            prev_f64(self.end)
        }
    }
}

/// Largest f64 strictly less than `x` (finite `x` assumed).
fn prev_f64(x: f64) -> f64 {
    if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else if x < 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        -f64::from_bits(1) // below ±0.0 sits the smallest negative subnormal
    }
}

/// Strategy returning a fixed value. Handy for composing and for the shim's
/// own tests.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..2000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
            let s = (1usize..400).generate(&mut rng);
            assert!((1..400).contains(&s));
        }
    }

    #[test]
    fn f64_range_excludes_upper_bound() {
        let mut rng = TestRng::for_case("f64_range", 0);
        for _ in 0..5000 {
            let v = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&v), "{v} escaped [0,1)");
        }
        assert!(prev_f64(1.0) < 1.0);
        assert!(prev_f64(0.0) < 0.0);
        assert!(prev_f64(-1.0) < -1.0);
    }

    #[test]
    fn endpoints_are_reachable() {
        let mut rng = TestRng::for_case("edges", 0);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..5000 {
            match (0u64..4).generate(&mut rng) {
                0 => saw_lo = true,
                3 => saw_hi = true,
                _ => {}
            }
        }
        assert!(saw_lo && saw_hi);
    }
}
