//! Offline shim for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Provides the subset of the `parking_lot` API this workspace uses, backed
//! by `std::sync` primitives. The key API difference `parking_lot` offers —
//! lock methods returning guards directly instead of `Result`s — is
//! preserved by unwrapping poison errors (a poisoned lock simply keeps
//! working, matching `parking_lot` semantics of not tracking poisoning).

use std::sync;

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
