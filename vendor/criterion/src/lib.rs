//! Offline shim for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset of the criterion API the workspace benches use
//! (`benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros) with a wall-clock measurement loop and an
//! honest, if small, statistical pipeline:
//!
//! 1. an explicit *warm-up* phase runs the routine untimed until the warm-up
//!    budget elapses (caches, branch predictors and lazy allocations settle);
//! 2. the timed phase collects `sample_size` samples, each a batch sized so
//!    one sample lasts roughly the sample budget;
//! 3. per-sample means pass through *Tukey fences* (1.5 × IQR beyond the
//!    quartiles) to reject outliers — on a shared machine the slow tail is
//!    scheduling noise, not the code under test;
//! 4. the report states the inlier mean, the minimum (the least-noise
//!    estimate of the true cost), a normal-approximation 95% confidence
//!    interval of the mean, and how many samples were rejected.
//!
//! There is still no HTML report or bootstrap; [`SampleStats`] is exposed so
//! harness binaries can reuse the same robust summary for their own JSON
//! snapshots.
//!
//! Environment knobs:
//! * `CRITERION_SAMPLE_MS` — target measurement time per sample in
//!   milliseconds (default 20).
//! * `CRITERION_WARMUP_MS` — warm-up time per benchmark in milliseconds
//!   (default: one sample budget).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Robust summary of a set of per-iteration timings (nanoseconds).
///
/// Built by [`SampleStats::from_ns`]: samples outside the Tukey fences
/// (`[Q1 - 1.5·IQR, Q3 + 1.5·IQR]`) are rejected as outliers; `mean_ns`,
/// `median_ns` and the confidence interval describe the surviving inliers,
/// while `min_ns` is the minimum over *all* samples (a minimum cannot be
/// inflated by noise, only deflated by mismeasurement).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleStats {
    /// Mean of the inlier samples.
    pub mean_ns: f64,
    /// Median of the inlier samples.
    pub median_ns: f64,
    /// Minimum over all samples.
    pub min_ns: f64,
    /// Half-width of the normal-approximation 95% CI of the inlier mean.
    pub ci95_ns: f64,
    /// Number of samples rejected by the Tukey fences.
    pub outliers: usize,
    /// Number of inlier samples the summary describes.
    pub samples: usize,
}

impl SampleStats {
    /// Summarize per-iteration timings in nanoseconds. Returns `None` for an
    /// empty input.
    pub fn from_ns(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
        let min_ns = sorted[0];
        let q1 = quantile(&sorted, 0.25);
        let q3 = quantile(&sorted, 0.75);
        let iqr = q3 - q1;
        let (lo_fence, hi_fence) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
        let inliers: Vec<f64> = sorted
            .iter()
            .copied()
            .filter(|&s| s >= lo_fence && s <= hi_fence)
            .collect();
        // The quartiles themselves are always inside the fences, so at least
        // half of the samples survive and `inliers` is never empty.
        let n = inliers.len() as f64;
        let mean_ns = inliers.iter().sum::<f64>() / n;
        let median_ns = quantile(&inliers, 0.5);
        let ci95_ns = if inliers.len() > 1 {
            let var = inliers.iter().map(|s| (s - mean_ns).powi(2)).sum::<f64>() / (n - 1.0);
            1.96 * (var / n).sqrt()
        } else {
            0.0
        };
        Some(Self {
            mean_ns,
            median_ns,
            min_ns,
            ci95_ns,
            outliers: samples.len() - inliers.len(),
            samples: inliers.len(),
        })
    }
}

/// Linear-interpolation quantile of an ascending-sorted non-empty slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = q * (sorted.len() - 1) as f64;
    let base = pos.floor() as usize;
    let frac = pos - base as f64;
    if base + 1 < sorted.len() {
        sorted[base] * (1.0 - frac) + sorted[base + 1] * frac
    } else {
        sorted[base]
    }
}

/// Throughput declaration for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the measurement loop for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: Vec<u64>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: Vec::new(),
            sample_count,
        }
    }

    /// Measure `routine`, calling it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let budget = sample_budget();
        // Warm-up phase: run untimed until the warm-up budget elapses so the
        // timed samples see settled caches, branch predictors and any lazily
        // allocated state.
        let warmup = warmup_budget(budget);
        let warmup_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warmup_start.elapsed() >= warmup {
                break;
            }
        }
        // Size the batch so one sample lasts roughly `budget`. Calibrate on
        // timed batches of doubling size rather than a single cold call, so
        // one expensive iteration cannot collapse the batch to ~1 iteration.
        let mut calib_iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..calib_iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= budget / 10 || calib_iters >= 1_000_000 {
                break (elapsed / calib_iters as u32).max(Duration::from_nanos(1));
            }
            calib_iters *= 2;
        };
        let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
            self.iters_per_sample.push(iters);
        }
    }

    /// Robust per-iteration summary of the collected samples.
    fn stats(&self) -> Option<SampleStats> {
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .zip(&self.iters_per_sample)
            .map(|(d, &iters)| d.as_nanos() as f64 / iters.max(1) as f64)
            .collect();
        SampleStats::from_ns(&per_iter)
    }
}

fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(20);
    Duration::from_millis(ms.max(1))
}

fn warmup_budget(sample_budget: Duration) -> Duration {
    std::env::var("CRITERION_WARMUP_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(sample_budget)
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measurement wall-clock time; accepted for API compatibility.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Warm-up wall-clock time; accepted for API compatibility (the shim's
    /// warm-up budget comes from `CRITERION_WARMUP_MS`).
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b))
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input))
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        let stats = bencher.stats().unwrap_or(SampleStats {
            mean_ns: 0.0,
            median_ns: 0.0,
            min_ns: 0.0,
            ci95_ns: 0.0,
            outliers: 0,
            samples: 0,
        });
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if stats.mean_ns > 0.0 => {
                let per_sec = n as f64 / (stats.mean_ns / 1.0e9);
                format!("  ({per_sec:.3e} elem/s)")
            }
            Some(Throughput::Bytes(n)) if stats.mean_ns > 0.0 => {
                let per_sec = n as f64 / (stats.mean_ns / 1.0e9);
                format!("  ({per_sec:.3e} B/s)")
            }
            _ => String::new(),
        };
        let outliers = if stats.outliers > 0 {
            format!(", {} outliers rejected", stats.outliers)
        } else {
            String::new()
        };
        println!(
            "{}/{id}: {} ±{} (min {}{outliers}){rate}",
            self.name,
            format_ns(stats.mean_ns),
            format_ns(stats.ci95_ns),
            format_ns(stats.min_ns),
        );
        self
    }

    /// Finish the group (prints nothing; reports are emitted per benchmark).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string())
            .sample_size(10)
            .bench_function("default", f);
        self
    }
}

/// Prevent the compiler from optimizing away a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.bench_with_input(BenchmarkId::new("with", 7), &7u64, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(ran >= 2);
        std::env::remove_var("CRITERION_SAMPLE_MS");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    #[test]
    fn stats_reject_tukey_outliers() {
        // Nine tight samples and one wild outlier: the fences drop it, so
        // the mean stays near 10 while the minimum is still global.
        let samples = [10.0, 10.1, 9.9, 10.0, 10.2, 9.8, 10.1, 10.0, 9.9, 500.0];
        let stats = SampleStats::from_ns(&samples).unwrap();
        assert_eq!(stats.outliers, 1);
        assert_eq!(stats.samples, 9);
        assert!((stats.mean_ns - 10.0).abs() < 0.2, "mean {}", stats.mean_ns);
        assert!((stats.median_ns - 10.0).abs() < 0.2);
        assert!((stats.min_ns - 9.8).abs() < f64::EPSILON);
        assert!(stats.ci95_ns > 0.0 && stats.ci95_ns < 1.0);
    }

    #[test]
    fn stats_degenerate_inputs() {
        assert!(SampleStats::from_ns(&[]).is_none());
        let one = SampleStats::from_ns(&[42.0]).unwrap();
        assert_eq!(one.mean_ns, 42.0);
        assert_eq!(one.min_ns, 42.0);
        assert_eq!(one.ci95_ns, 0.0);
        assert_eq!(one.outliers, 0);
        // Identical samples: zero IQR keeps everything inside the fences.
        let flat = SampleStats::from_ns(&[7.0; 8]).unwrap();
        assert_eq!(flat.outliers, 0);
        assert_eq!(flat.mean_ns, 7.0);
        assert_eq!(flat.ci95_ns, 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&sorted, 0.0), 1.0);
        assert_eq!(quantile(&sorted, 1.0), 4.0);
        assert_eq!(quantile(&sorted, 0.5), 2.5);
    }
}
