//! Offline shim for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset of the criterion API the workspace benches use
//! (`benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros) with a small wall-clock measurement loop.
//! There is no statistical analysis, HTML report, or outlier detection —
//! each benchmark prints its per-iteration mean and, when a throughput was
//! declared, elements per second.
//!
//! Environment knobs:
//! * `CRITERION_SAMPLE_MS` — target measurement time per sample in
//!   milliseconds (default 20).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput declaration for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the measurement loop for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: Vec<u64>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: Vec::new(),
            sample_count,
        }
    }

    /// Measure `routine`, calling it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let budget = sample_budget();
        // Warm up, then size the batch so one sample lasts roughly `budget`.
        // Calibrate on timed batches of doubling size rather than a single
        // cold call, so an expensive first iteration (lazy allocation, cold
        // caches) cannot collapse the batch to ~1 iteration.
        std::hint::black_box(routine());
        let mut calib_iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..calib_iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= budget / 10 || calib_iters >= 1_000_000 {
                break (elapsed / calib_iters as u32).max(Duration::from_nanos(1));
            }
            calib_iters *= 2;
        };
        let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
            self.iters_per_sample.push(iters);
        }
    }

    fn mean_ns(&self) -> f64 {
        let total_ns: f64 = self.samples.iter().map(|d| d.as_nanos() as f64).sum();
        let total_iters: f64 = self.iters_per_sample.iter().map(|&i| i as f64).sum();
        if total_iters == 0.0 {
            0.0
        } else {
            total_ns / total_iters
        }
    }
}

fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(20);
    Duration::from_millis(ms.max(1))
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measurement wall-clock time; accepted for API compatibility.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b))
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input))
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        let mean_ns = bencher.mean_ns();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                let per_sec = n as f64 / (mean_ns / 1.0e9);
                format!("  ({per_sec:.3e} elem/s)")
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                let per_sec = n as f64 / (mean_ns / 1.0e9);
                format!("  ({per_sec:.3e} B/s)")
            }
            _ => String::new(),
        };
        println!("{}/{id}: {}{rate}", self.name, format_ns(mean_ns));
        self
    }

    /// Finish the group (prints nothing; reports are emitted per benchmark).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string())
            .sample_size(10)
            .bench_function("default", f);
        self
    }
}

/// Prevent the compiler from optimizing away a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.bench_with_input(BenchmarkId::new("with", 7), &7u64, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(ran >= 2);
        std::env::remove_var("CRITERION_SAMPLE_MS");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
