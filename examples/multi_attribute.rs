//! Multi-attribute filtering (Sect. 8 / Experiment 6): one bloomRF over the
//! concatenation of two attributes answers conjunctive predicates such as
//! `Run < 300 AND ObjectID = const` with a better FPR than two separate
//! filters combined.
//!
//! The concatenated keys are expressed through the typed API: a
//! `TypedBloomRf<(u32, u32)>` packs the pair in the high/low halves of the
//! `u64` domain, so `A = a AND B ∈ [lo, hi]` is the single typed range query
//! `[(a, lo), (a, hi)]`. Inserting both orders — as `MultiAttrBloomRf` does
//! internally — answers equality on either attribute.
//!
//! Run with: `cargo run --release --example multi_attribute`

use bloomrf::BloomRf;
use bloomrf_workloads::datasets::sdss_like_objects;

/// Order-preserving 32-bit reduction of a 64-bit object id (keep the MSBs).
fn id32(object_id: u64) -> u32 {
    (object_id >> 32) as u32
}

fn main() {
    let objects = sdss_like_objects(200_000, 7);
    println!(
        "synthetic sky-survey dataset: {} (run, object_id) pairs",
        objects.len()
    );

    // One typed filter over the concatenated attributes (both orders
    // inserted, so the per-key budget is split over two insertions).
    let multi = BloomRf::builder()
        .expected_keys(objects.len() * 2)
        .bits_per_key(9.0)
        .key_type::<(u32, u32)>()
        .build()
        .expect("config");
    // Two separate filters, combined conjunctively at query time.
    let run_filter = BloomRf::builder()
        .expected_keys(objects.len())
        .bits_per_key(9.0)
        .build()
        .expect("config");
    let id_filter = BloomRf::builder()
        .expected_keys(objects.len())
        .bits_per_key(9.0)
        .build()
        .expect("config");

    for o in &objects {
        let (run, id) = (o.run as u32, id32(o.object_id));
        multi.insert(&(run, id)); // answers: Run = r AND ObjectID ∈ [..]
        multi.insert(&(id, run)); // answers: ObjectID = id AND Run ∈ [..]
        run_filter.insert(o.run);
        id_filter.insert(o.object_id);
    }

    // Query: Run < 300 AND ObjectID = const, where const belongs to an object
    // whose run is >= 300 → the true answer is "no".
    let probe = objects
        .iter()
        .find(|o| o.run >= 600)
        .expect("dataset has high runs");

    let multi_answer =
        multi.contains_range(&(id32(probe.object_id), 0), &(id32(probe.object_id), 299));
    let separate_answer =
        run_filter.contains_range(0, 299) && id_filter.contains_point(probe.object_id);

    println!(
        "query: Run < 300 AND ObjectID = {:#x} (true answer: no)",
        probe.object_id
    );
    println!("  multi-attribute bloomRF(Run,ObjectID) -> {multi_answer}");
    println!("  two separate filters (conjunction)    -> {separate_answer}");
    println!("  (the separate Run<300 probe is almost always positive, so the");
    println!("   conjunction inherits the ObjectID filter's FPR at best; the");
    println!("   multi-attribute filter checks the combination directly)");

    // A real combination is, of course, always found.
    let existing = &objects[42];
    let (run, id) = (existing.run as u32, id32(existing.object_id));
    assert!(multi.contains_point(&(run, id)));
    assert!(multi.contains_range(&(run, id), &(run, id)));
    assert!(multi.contains_range(&(id, 0), &(id, u32::MAX))); // ObjectID = id, any run
    println!("multi_attribute example finished OK");
}
