//! Multi-attribute filtering (Sect. 8 / Experiment 6): one bloomRF over the
//! concatenation of two attributes answers conjunctive predicates such as
//! `Run < 300 AND ObjectID = const` with a better FPR than two separate
//! filters combined.
//!
//! Run with: `cargo run --release --example multi_attribute`

use bloomrf::encode::{EqAttribute, MultiAttrBloomRf};
use bloomrf::BloomRf;
use bloomrf_workloads::datasets::sdss_like_objects;

/// Runs are small integers; spread them over the u64 domain so the
/// precision-reduction of the multi-attribute filter preserves their order.
fn run_key(run: u64) -> u64 {
    run << 48
}

fn main() {
    let objects = sdss_like_objects(200_000, 7);
    println!(
        "synthetic sky-survey dataset: {} (run, object_id) pairs",
        objects.len()
    );

    // One filter over the concatenated attributes (both orders inserted).
    let multi = MultiAttrBloomRf::new(BloomRf::basic(64, objects.len() * 2, 9.0, 7).unwrap(), 32);
    // Two separate filters, combined conjunctively at query time.
    let run_filter = BloomRf::basic(64, objects.len(), 9.0, 7).unwrap();
    let id_filter = BloomRf::basic(64, objects.len(), 9.0, 7).unwrap();

    for o in &objects {
        multi.insert(run_key(o.run), o.object_id);
        run_filter.insert(run_key(o.run));
        id_filter.insert(o.object_id);
    }

    // Query: Run < 300 AND ObjectID = const, where const belongs to an object
    // whose run is >= 300 → the true answer is "no".
    let probe = objects
        .iter()
        .find(|o| o.run >= 600)
        .expect("dataset has high runs");
    let threshold = run_key(300);

    let multi_answer = multi.may_match(EqAttribute::B, probe.object_id, 0, threshold - 1);
    let separate_answer =
        run_filter.contains_range(0, threshold - 1) && id_filter.contains_point(probe.object_id);

    println!(
        "query: Run < 300 AND ObjectID = {:#x} (true answer: no)",
        probe.object_id
    );
    println!("  multi-attribute bloomRF(Run,ObjectID) -> {multi_answer}");
    println!("  two separate filters (conjunction)    -> {separate_answer}");
    println!("  (the separate Run<300 probe is almost always positive, so the");
    println!("   conjunction inherits the ObjectID filter's FPR at best; the");
    println!("   multi-attribute filter checks the combination directly)");

    // A real combination is, of course, always found.
    let existing = &objects[42];
    assert!(multi.may_match_point(run_key(existing.run), existing.object_id));
    assert!(multi.may_match(
        EqAttribute::A,
        run_key(existing.run),
        existing.object_id,
        existing.object_id
    ));
    println!("multi_attribute example finished OK");
}
