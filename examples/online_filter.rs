//! bloomRF is an *online* filter (Problem 2 of the paper): keys can be
//! inserted while point and range queries run concurrently on other threads —
//! no offline construction pass over the full dataset is needed.
//!
//! Run with: `cargo run --release --example online_filter`

use bloomrf::BloomRf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let n_keys = 2_000_000u64;
    let filter = Arc::new(BloomRf::basic(64, n_keys as usize, 14.0, 7).expect("config"));
    let stop = Arc::new(AtomicBool::new(false));
    let lookups_done = Arc::new(AtomicUsize::new(0));

    // Writer: streams keys into the filter.
    let writer = {
        let filter = Arc::clone(&filter);
        std::thread::spawn(move || {
            let start = Instant::now();
            for i in 0..n_keys {
                filter.insert(bloomrf::hashing::mix64(i));
            }
            start.elapsed()
        })
    };

    // Readers: issue point and range lookups while the writer is running.
    let readers: Vec<_> = (0..2)
        .map(|t| {
            let filter = Arc::clone(&filter);
            let stop = Arc::clone(&stop);
            let lookups_done = Arc::clone(&lookups_done);
            std::thread::spawn(move || {
                let mut positives = 0usize;
                let mut i = t as u64;
                // ordering: stop flag and lookup counter are advisory — a
                // few extra loop turns or a slightly stale count are fine.
                while !stop.load(Ordering::Relaxed) {
                    let key = bloomrf::hashing::mix64(i % n_keys);
                    if filter.contains_point(key) {
                        positives += 1;
                    }
                    // ordering: telemetry counter, see above.
                    if filter.contains_range(key, key.saturating_add(1 << 16)) {
                        positives += 1;
                    }
                    lookups_done.fetch_add(2, Ordering::Relaxed);
                    i += 13;
                }
                positives
            })
        })
        .collect();

    let insert_time = writer.join().expect("writer");
    std::thread::sleep(Duration::from_millis(100));
    // ordering: the joins below are the real synchronization points.
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let _ = r.join().expect("reader");
    }

    println!(
        "inserted {} keys in {:.2}s ({:.2} M inserts/s) while {} concurrent lookups ran",
        n_keys,
        insert_time.as_secs_f64(),
        n_keys as f64 / insert_time.as_secs_f64() / 1e6,
        // ordering: readers are joined; this is the final counter value.
        lookups_done.load(Ordering::Relaxed),
    );

    // After the writer finished, every inserted key is visible — no false negatives.
    for i in (0..n_keys).step_by(10_007) {
        assert!(filter.contains_point(bloomrf::hashing::mix64(i)));
    }
    println!("no false negatives after concurrent insertion — online_filter example finished OK");
}
