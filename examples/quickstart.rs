//! Quickstart: build a bloomRF filter, insert keys, run point and range
//! queries, and let the tuning advisor pick an extended configuration for
//! large ranges.
//!
//! Run with: `cargo run --release --example quickstart`

use bloomrf::advisor::TuningAdvisor;
use bloomrf::BloomRf;

fn main() {
    // --- 1. The tuning-free basic filter --------------------------------
    let n_keys = 1_000_000usize;
    let filter = BloomRf::basic(64, n_keys, 14.0, 7).expect("valid configuration");

    // bloomRF is an online filter: inserts take &self and can run while
    // queries are in flight.
    for key in (0..n_keys as u64).map(|i| i * 977 + 13) {
        filter.insert(key);
    }

    println!(
        "basic bloomRF: {} keys, {:.1} bits/key",
        filter.key_count(),
        filter.memory_bits() as f64 / n_keys as f64
    );

    // Point queries behave like a Bloom filter.
    assert!(filter.contains_point(13));
    assert!(filter.contains_point(977 + 13));
    let missing = 977 * 500 + 20; // between two keys
    println!(
        "point query for a missing key  -> {}",
        filter.contains_point(missing)
    );

    // Range queries: "is there any key in [lo, hi]?"
    assert!(filter.contains_range(0, 1000), "contains key 13");
    let empty_range = (977 * 1000 + 20, 977 * 1000 + 500);
    println!(
        "range query on an empty interval -> {} (false positives possible, negatives exact)",
        filter.contains_range(empty_range.0, empty_range.1)
    );

    // Probe statistics show the constant cost of the two-path lookup.
    let (_, stats) = filter.contains_range_counted(1 << 40, (1 << 40) + (1 << 30));
    println!(
        "range of 2^30 values probed with {} word accesses and {} covering bits",
        stats.word_accesses, stats.bit_checks
    );

    // --- 2. Advisor-tuned filter for large ranges ------------------------
    // The unified builder is the one construction surface: `.max_range(..)`
    // switches to the advisor-tuned extended configuration (Sect. 7), and
    // the same chain takes `.sharded(..)` / `.key_type::<f64>()` when needed.
    let tuned = TuningAdvisor::tune_for(64, 200_000, 18.0, 1e9).expect("tunable");
    println!(
        "advisor picked {} layers, Δ = {:?}, exact level = {:?}, predicted point FPR = {:.4}",
        tuned.config.num_layers(),
        tuned.config.delta_vector(),
        tuned.config.exact_level,
        tuned.point_fpr
    );
    let big = BloomRf::builder()
        .expected_keys(200_000)
        .bits_per_key(18.0)
        .max_range(1e9)
        .build()
        .expect("valid configuration");
    assert_eq!(big.config(), &tuned.config, "builder == advisor");
    for key in (0..200_000u64).map(|i| i << 20) {
        big.insert(key);
    }
    println!(
        "tuned filter answers a 10^9-wide empty range with {}",
        big.contains_range(3, 1_000_000_000)
    );
    println!("quickstart finished OK");
}
