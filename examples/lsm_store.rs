//! An LSM key-value store with bloomRF filter blocks and Bloofi-style
//! filter-tree routing — the system-level scenario of the paper's
//! evaluation (RocksDB-style read path), scaled past a handful of SSTs.
//!
//! The example first unions two same-config bloomRF filters through
//! [`BloomRfBuilder::union_of`] — the aggregation primitive the filter
//! tree's inner nodes are built from — then loads a YCSB-E-like dataset
//! into a [`TypedDb<u64>`] flushed into many small SSTs and replays the
//! same point gets and empty range scans under scan-all and tree routing,
//! printing how many per-SST filter probes the tree pruned.
//!
//! Run with: `cargo run --release --example lsm_store`

use bloomrf::BloomRfBuilder;
use bloomrf_filters::FilterKind;
use bloomrf_lsm::{DbOptions, IoModel, ReadRouting, TreeOptions, TypedDb};
use bloomrf_workloads::{Distribution, QueryGenerator, YcsbEConfig, YcsbEWorkload};

/// Build one store over the workload with the requested read routing.
fn load_store(workload: &YcsbEWorkload, routing: ReadRouting) -> TypedDb<u64> {
    let db: TypedDb<u64> = TypedDb::new(DbOptions {
        memtable_flush_entries: 1024,
        entries_per_block: 8,
        filter_kind: FilterKind::BloomRf { max_range: 1e4 },
        bits_per_key: 22.0,
        io_model: IoModel::default(),
        routing,
    });
    for &key in &workload.load_keys {
        db.put(&key, workload.value_for(key));
    }
    db.flush();
    db
}

fn main() {
    // --- Filter union: the primitive behind the tree's inner nodes. -------
    let spec = || BloomRfBuilder::new().expected_keys(4096).bits_per_key(14.0);
    let evens = spec().build().unwrap();
    evens.insert_batch(&(0..2048u64).map(|k| k * 2).collect::<Vec<_>>());
    let odds = spec().build().unwrap();
    odds.insert_batch(&(0..2048u64).map(|k| k * 2 + 1).collect::<Vec<_>>());
    let node = spec().union_of(&[&evens, &odds]).unwrap();
    assert!(node.contains_point(6) && node.contains_point(7));
    println!(
        "union node: {} keys across {} bits (children: {} + {})",
        node.key_count(),
        node.memory_bits(),
        evens.key_count(),
        odds.key_count(),
    );

    // --- Routed vs scan-all reads over the same dataset. ------------------
    let workload = YcsbEWorkload::generate(&YcsbEConfig {
        num_keys: 100_000,
        num_queries: 2_000,
        range_size: 1 << 10,
        value_size: 128,
        ..Default::default()
    });

    for routing in [
        ReadRouting::ScanAll,
        ReadRouting::FilterTree(TreeOptions::default()),
    ] {
        let label = match routing {
            ReadRouting::ScanAll => "scan-all",
            ReadRouting::FilterTree(_) => "filter-tree",
        };
        let db = load_store(&workload, routing);

        // Point reads on existing keys always succeed, routed or not.
        let sample_key = workload.load_keys[12345 % workload.load_keys.len()];
        assert!(db.get(&sample_key).is_some());

        // Empty range scans: the worst case for a filter — and for a flat
        // SST scan, every one of them costs a probe per table.
        db.reset_stats();
        let mut generator = QueryGenerator::new(&workload.load_keys, Distribution::Uniform, 7);
        let queries = generator.empty_ranges(2_000, 1 << 10);
        let mut false_positives = 0usize;
        for q in &queries {
            if db.range_non_empty(&q.lo, &q.hi) {
                false_positives += 1;
            }
        }
        for q in &queries {
            assert_eq!(db.get(&q.lo.wrapping_mul(2).wrapping_add(1)), None);
        }

        let stats = db.stats();
        println!(
            "{label:>12}: {} SSTs, FPR {:.4}, effective FPR {:.4}, \
             {} SSTs probed / {} pruned (pruning ratio {:.3})",
            db.inner().num_ssts(),
            false_positives as f64 / queries.len() as f64,
            stats.effective_fpr(),
            stats.ssts_probed,
            stats.ssts_pruned,
            stats.pruning_ratio(),
        );
        if let Some((levels, nodes, bits)) = db.inner().tree_shape() {
            println!(
                "{:>12}  tree: {levels} levels, {nodes} nodes, {} tree probes, {:.1} KiB of filters",
                "", stats.tree_probes, bits as f64 / 8.0 / 1024.0,
            );
        }
    }
    println!("lsm_store example finished OK");
}
