//! An LSM key-value store with bloomRF filter blocks — the system-level
//! scenario of the paper's evaluation (RocksDB-style read path).
//!
//! The example loads a YCSB-E-like dataset, issues empty range scans (the
//! worst case for a filter) and prints how many block reads each filter
//! family avoided.
//!
//! Run with: `cargo run --release --example lsm_store`

use bloomrf_filters::FilterKind;
use bloomrf_lsm::{Db, DbOptions, IoModel};
use bloomrf_workloads::{Distribution, QueryGenerator, YcsbEConfig, YcsbEWorkload};

fn main() {
    let workload = YcsbEWorkload::generate(&YcsbEConfig {
        num_keys: 100_000,
        num_queries: 2_000,
        range_size: 1 << 10,
        value_size: 128,
        ..Default::default()
    });

    for filter_kind in [
        FilterKind::BloomRf { max_range: 1e4 },
        FilterKind::Rosetta { max_range: 1 << 14 },
        FilterKind::Surf,
        FilterKind::Bloom,
    ] {
        let db = Db::new(DbOptions {
            memtable_flush_entries: 16 * 1024,
            entries_per_block: 8,
            filter_kind,
            bits_per_key: 22.0,
            io_model: IoModel::default(),
        });
        for &key in &workload.load_keys {
            db.put(key, workload.value_for(key));
        }
        db.flush();

        // Point reads on existing keys always succeed.
        let sample_key = workload.load_keys[12345 % workload.load_keys.len()];
        assert!(db.get(sample_key).is_some());

        // Empty range scans: a good range filter prunes the block reads.
        db.reset_stats();
        let mut generator = QueryGenerator::new(&workload.load_keys, Distribution::Uniform, 7);
        let queries = generator.empty_ranges(2_000, 1 << 10);
        let mut false_positives = 0usize;
        for q in &queries {
            if db.range_is_possibly_non_empty(q.lo, q.hi) {
                false_positives += 1;
            }
        }
        let stats = db.stats();
        println!(
            "{:>12}: {} SSTs, {:5} empty scans, FPR {:.4}, {:6} blocks read, \
             filter probe {:.2} ms, simulated I/O wait {:.2} ms",
            filter_kind.label(),
            db.num_ssts(),
            queries.len(),
            false_positives as f64 / queries.len() as f64,
            stats.blocks_read,
            stats.filter_probe_ns as f64 / 1e6,
            stats.io_wait_ns as f64 / 1e6,
        );
    }
    println!("lsm_store example finished OK");
}
