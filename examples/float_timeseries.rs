//! Range-filtering floating-point data (Sect. 8 / Experiment 5): a
//! Kepler-like flux time series is inserted through the order-preserving
//! float coding φ and probed with small float ranges.
//!
//! Run with: `cargo run --release --example float_timeseries`

use bloomrf::{encode_f64, BloomRf};
use bloomrf_workloads::datasets::{kepler_like_flux, series_stats};

fn main() {
    let series = kepler_like_flux(200_000, 2016);
    let stats = series_stats(&series);
    println!(
        "synthetic flux series: {} samples, min {:.2}, max {:.2}, {:.1}% negative",
        series.len(),
        stats.min,
        stats.max,
        stats.negative_fraction * 100.0
    );

    let filter = BloomRf::basic(64, series.len(), 16.0, 7).expect("config");
    for &value in &series {
        filter.insert(encode_f64(value));
    }

    // Point query: a measured value is always found.
    assert!(filter.contains_point(encode_f64(series[1000])));

    // Range query: "was any flux value observed in [lo, hi]?"
    let lo = stats.mean - 0.5;
    let hi = stats.mean + 0.5;
    println!(
        "flux in [{lo:.3}, {hi:.3}]? -> {}",
        filter.contains_range(encode_f64(lo), encode_f64(hi))
    );

    // Narrow queries far outside the observed value range are rejected.
    let far_lo = stats.max + 1_000.0;
    let far_hi = far_lo + 1.0e-3;
    println!(
        "flux in [{far_lo:.3}, {far_hi:.3}] (outside the data)? -> {}",
        filter.contains_range(encode_f64(far_lo), encode_f64(far_hi))
    );

    // The coding preserves order even across the sign boundary.
    assert!(encode_f64(-0.1) < encode_f64(0.1));
    assert!(encode_f64(f64::NEG_INFINITY) < encode_f64(stats.min));
    println!("float_timeseries example finished OK");
}
