//! Range-filtering floating-point data (Sect. 8 / Experiment 5): a
//! Kepler-like flux time series is inserted into a *typed* filter
//! (`TypedBloomRf<f64>`) — the order-preserving float coding φ is applied by
//! the `RangeKey` codec on both the insert and the probe side, so it can no
//! longer be applied on one side only.
//!
//! Run with: `cargo run --release --example float_timeseries`

use bloomrf::{BloomRf, RangeKey};
use bloomrf_workloads::datasets::{kepler_like_flux, series_stats};

fn main() {
    let series = kepler_like_flux(200_000, 2016);
    let stats = series_stats(&series);
    println!(
        "synthetic flux series: {} samples, min {:.2}, max {:.2}, {:.1}% negative",
        series.len(),
        stats.min,
        stats.max,
        stats.negative_fraction * 100.0
    );

    // One builder chain: space budget + key type. The filter speaks f64.
    let filter = BloomRf::builder()
        .expected_keys(series.len())
        .bits_per_key(16.0)
        .key_type::<f64>()
        .build()
        .expect("config");
    filter.insert_batch(&series);

    // Point query: a measured value is always found.
    assert!(filter.contains_point(&series[1000]));

    // Range query: "was any flux value observed in [lo, hi]?"
    let lo = stats.mean - 0.5;
    let hi = stats.mean + 0.5;
    println!(
        "flux in [{lo:.3}, {hi:.3}]? -> {}",
        filter.contains_range(&lo, &hi)
    );

    // Narrow queries far outside the observed value range are rejected.
    let far_lo = stats.max + 1_000.0;
    let far_hi = far_lo + 1.0e-3;
    println!(
        "flux in [{far_lo:.3}, {far_hi:.3}] (outside the data)? -> {}",
        filter.contains_range(&far_lo, &far_hi)
    );

    // The codec preserves order even across the sign boundary.
    assert!((-0.1f64).to_domain() < 0.1f64.to_domain());
    assert!(f64::NEG_INFINITY.to_domain() < stats.min.to_domain());
    println!("float_timeseries example finished OK");
}
