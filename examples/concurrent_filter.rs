//! Concurrent serving with `ShardedBloomRf` and the batched probe engine:
//! writer threads insert disjoint key partitions through `insert_batch`
//! while reader threads issue batched point and range probes, then the
//! answers are differentially checked against a sequential `BloomRf`.
//!
//! Run with `cargo run --release --example concurrent_filter`.

use std::sync::Arc;

use bloomrf::{BloomRf, ShardedBloomRf};

fn main() {
    let writers = 4usize;
    let keys_per_writer = 100_000usize;
    let n_keys = writers * keys_per_writer;

    // A sharded filter stripes every segment into lock-free shards; answers
    // are bit-identical to the flat `BloomRf` with the same configuration.
    // `.sharded(16)` on the unified builder selects the striped backend.
    let filter: Arc<ShardedBloomRf> = Arc::new(
        BloomRf::builder()
            .expected_keys(n_keys)
            .bits_per_key(14.0)
            .sharded(16)
            .build()
            .expect("config"),
    );
    println!(
        "sharded filter: {} keys budgeted, {} shards, {:.1} KiB",
        n_keys,
        filter.shard_count(),
        filter.memory_bits() as f64 / 8.0 / 1024.0
    );

    // Writers insert disjoint partitions concurrently; readers probe while
    // the writes are in flight.
    let keys_of = |w: usize| -> Vec<u64> {
        (0..keys_per_writer as u64)
            .map(|i| bloomrf::hashing::mix64(w as u64 * 0x1_0000_0000 + i))
            .collect()
    };
    std::thread::scope(|scope| {
        for w in 0..writers {
            let filter = Arc::clone(&filter);
            scope.spawn(move || {
                for chunk in keys_of(w).chunks(4096) {
                    filter.insert_batch(chunk);
                }
            });
        }
        for r in 0..2 {
            let filter = Arc::clone(&filter);
            scope.spawn(move || {
                let probes: Vec<u64> = (0..50_000u64)
                    .map(|i| bloomrf::hashing::mix64(i ^ (r as u64) << 40))
                    .collect();
                let hits = filter
                    .contains_point_batch(&probes)
                    .iter()
                    .filter(|&&b| b)
                    .count();
                println!(
                    "reader {r}: {hits}/{} concurrent probes positive",
                    probes.len()
                );
            });
        }
    });
    println!(
        "inserted {} keys across {writers} writer threads",
        filter.key_count()
    );

    // After joining, every inserted key is visible — zero false negatives.
    for w in 0..writers {
        let keys = keys_of(w);
        let found = filter
            .contains_point_batch(&keys)
            .iter()
            .filter(|&&b| b)
            .count();
        assert_eq!(found, keys.len(), "writer {w} lost keys");
    }
    println!("zero false negatives after join");

    // Differential check: the sequential filter built from the same inserts
    // answers identically, point and range, single and batched.
    let sequential = BloomRf::basic(64, n_keys, 14.0, 7).expect("config");
    for w in 0..writers {
        sequential.insert_batch(&keys_of(w));
    }
    let probes: Vec<u64> = (0..20_000u64)
        .map(|i| bloomrf::hashing::mix64(i + 7))
        .collect();
    let ranges: Vec<(u64, u64)> = probes
        .iter()
        .map(|&p| (p, p.saturating_add(1 << 16)))
        .collect();
    assert_eq!(
        sequential.contains_point_batch(&probes),
        filter.contains_point_batch(&probes)
    );
    assert_eq!(
        sequential.contains_range_batch(&ranges),
        filter.contains_range_batch(&ranges)
    );
    println!("sharded answers are bit-identical to the sequential filter");
}
